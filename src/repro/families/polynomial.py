"""Explicit low-agreement function families over GF(q).

The recoloring machinery of the paper (Procedure Arb-Recolor, Section 5;
Kuhn's defective coloring, Lemma 2.1; Linial's coloring as the zero-defect
special case) needs, for a color space ``[M]``, a family of functions
``{ϕ_x : x ∈ [M]}`` from a set A to a set B such that any two distinct
functions agree on at most ``k`` points of A.

The paper invokes an existential (probabilistic) construction from
[Kuhn SPAA'09, Lemma 4.3].  We use Linial's *explicit* construction
instead: with ``A = B = GF(q)`` and ``ϕ_x`` the polynomial whose
coefficient vector is the base-``q`` representation of ``x`` (degree ≤ D),
two distinct polynomials of degree ≤ D agree on at most ``D`` points.
This keeps every node's computation deterministic and local, at the cost of
a polylog factor in the final color count (absorbed by all the paper's
statements).  See DESIGN.md §4 (substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidParameterError
from .primes import integer_nth_root, is_prime, next_prime


@dataclass(frozen=True)
class PolynomialFamily:
    """The family of polynomials of degree ≤ ``degree`` over GF(``q``).

    Function index ``x`` (a color in ``[0, q^(degree+1))``) denotes the
    polynomial whose base-``q`` digits are its coefficients (least
    significant digit = constant term).  Key property: two distinct indices
    give polynomials agreeing on at most ``degree`` of the ``q`` points.
    """

    q: int
    degree: int

    def __post_init__(self):
        if not is_prime(self.q):
            raise InvalidParameterError(f"family modulus {self.q} is not prime")
        if self.degree < 0:
            raise InvalidParameterError("family degree must be >= 0")

    @property
    def size(self) -> int:
        """Number of distinct functions, q^(degree+1)."""
        return self.q ** (self.degree + 1)

    @property
    def agreement(self) -> int:
        """Maximum number of points two distinct functions agree on."""
        return self.degree

    @property
    def num_pairs(self) -> int:
        """|A| · |B| = q², the size of the recolored color space."""
        return self.q * self.q

    def evaluate(self, x: int, alpha: int) -> int:
        """ϕ_x(alpha): evaluate polynomial ``x`` at point ``alpha`` (Horner)."""
        if not (0 <= x < self.size):
            raise InvalidParameterError(
                f"function index {x} outside [0, {self.size})"
            )
        if not (0 <= alpha < self.q):
            raise InvalidParameterError(f"point {alpha} outside GF({self.q})")
        # digits of x base q, most significant first, evaluated by Horner
        digits = []
        rem = x
        for _ in range(self.degree + 1):
            digits.append(rem % self.q)
            rem //= self.q
        acc = 0
        for coeff in reversed(digits):
            acc = (acc * alpha + coeff) % self.q
        return acc

    def row(self, x: int) -> tuple:
        """The full evaluation vector (ϕ_x(0), ..., ϕ_x(q−1))."""
        return tuple(self.evaluate(x, alpha) for alpha in range(self.q))

    def encode_pair(self, alpha: int, beta: int) -> int:
        """Encode the new color ⟨alpha, beta⟩ as an int in [0, q²)."""
        return alpha * self.q + beta

    def decode_pair(self, color: int) -> tuple:
        """Inverse of :meth:`encode_pair`."""
        return divmod(color, self.q)


def select_family(
    num_colors: int,
    conflict_degree: int,
    defect_prev: int,
    defect_new: int,
) -> PolynomialFamily:
    """Choose the cheapest polynomial family satisfying Lemma 5.1's condition.

    Parameters mirror the lemma: the current coloring uses ``num_colors``
    colors (M) and has (arb)defect ``defect_prev`` (d'); the step may emit a
    coloring of (arb)defect ``defect_new`` (d); every vertex has at most
    ``conflict_degree`` conflicting neighbours (Δ for defective coloring,
    the orientation out-degree A for arbdefective coloring).

    The condition is ``|A| > k · (A_conf − d') / (d − d' + 1)`` with
    ``k = degree`` for polynomial families, plus ``q^(degree+1) ≥ M`` so
    every current color indexes a distinct function.  Among all degrees we
    pick the one minimising q (and hence the new color count q²).
    """
    if num_colors < 1:
        raise InvalidParameterError("select_family: need at least one color")
    if defect_new < defect_prev:
        raise InvalidParameterError(
            "select_family: the defect budget cannot shrink "
            f"({defect_new} < {defect_prev})"
        )
    if conflict_degree < 0:
        raise InvalidParameterError("select_family: negative conflict degree")

    effective = max(0, conflict_degree - defect_prev)
    denom = defect_new - defect_prev + 1
    best: PolynomialFamily | None = None
    # Degrees beyond log2(M) cannot reduce q further (q >= 2 always); cap
    # the search generously.
    max_degree = max(2, num_colors.bit_length() + 2)
    for degree in range(1, max_degree + 1):
        # strict inequality: q > degree * effective / denom
        q_conflict = (degree * effective) // denom + 1
        root = integer_nth_root(max(0, num_colors - 1), degree + 1)
        q_size = root + 1  # smallest q with q^(degree+1) >= num_colors
        q = next_prime(max(q_conflict, q_size, 2))
        candidate = PolynomialFamily(q=q, degree=degree)
        if candidate.size < num_colors:
            # next_prime rounding can under-shoot the size constraint by one
            candidate = PolynomialFamily(q=next_prime(q + 1), degree=degree)
        if best is None or candidate.q < best.q:
            best = candidate
        if q_size <= 2 and q_conflict <= 2:
            break  # increasing the degree can no longer help
    assert best is not None
    return best
