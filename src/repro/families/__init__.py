"""Explicit set-system machinery: primes and GF(q) polynomial families."""

from .polynomial import PolynomialFamily, select_family
from .primes import integer_nth_root, is_prime, next_prime

__all__ = [
    "PolynomialFamily",
    "select_family",
    "is_prime",
    "next_prime",
    "integer_nth_root",
]
