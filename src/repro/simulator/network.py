"""The synchronous message-passing network (the LOCAL model substrate).

:class:`SynchronousNetwork` executes node programs in discrete rounds, the
model of Peleg's book and of the paper: *"computations proceed in discrete
rounds; in each round each vertex is allowed to send a message to each of its
neighbors; all messages sent in a round arrive before the next round
starts"*.

Round accounting matches the paper's definition of running time: the number
of communication rounds that elapse until every participating node halts.  A
protocol in which every node decides locally and halts without communicating
costs 0 rounds.

Engines
-------

Execution engines live in a first-class registry
(:mod:`repro.simulator.engines`): every engine is registered under a name
via :func:`~repro.simulator.engines.register_engine` and selected with the
``scheduler`` argument; unknown names raise
:class:`~repro.errors.SimulationError` listing whatever is registered.
Three engines ship built in, all producing byte-identical
:class:`RunResult`\\ s:

* ``"dense"`` — the reference implementation: every still-running node is
  activated in every round, in ascending vertex order.  This is the model
  definition made literal, and it is what validates the fast paths.
* ``"event"`` (default) — the active-set, event-driven fast path: the
  deterministic activation order is precomputed once, and a node that has
  declared quiescence (:meth:`~repro.simulator.context.NodeContext.
  idle_until_message`, optionally bounded by
  :meth:`~repro.simulator.context.NodeContext.wake_at`) is only activated
  in rounds where it has pending inbox messages or a due self-wakeup.
  Rounds in which *no* node is activatable are fast-forwarded in O(1),
  so sparse-activity executions (ruling-set stalls, color-class sweeps,
  recursive decompositions waiting on a deep part) cost proportional to
  the activity, not to rounds × nodes.
* ``"column"`` — the bulk-synchronous numpy engine
  (:mod:`repro.simulator.column`): programs that provide a vectorized
  kernel (:meth:`~repro.simulator.program.NodeProgram.column_kernel`)
  execute whole rounds as array operations over the CSR core; every other
  program transparently falls back to the event engine.

The equivalence rests on the quiescence contract: an idle declaration
promises that activating the node with an empty inbox would be a no-op.
Programs that never declare idleness behave identically under both
scalar engines by construction (same activation sequence, same delivery).
Round, message, and byte accounting are shared, so the observable
``RunResult`` — outputs, rounds, messages, bytes — is identical; the
parametrised equivalence suite (``tests/test_scheduler_equivalence.py``)
enforces this across the whole algorithm library for every registered
engine.

All engines also feed the same optional observation channel: a
:class:`~repro.obs.telemetry.Telemetry` sink passed via ``telemetry=``
receives per-round counters (active nodes, messages, bytes, wake/idle
transitions) and fast-forward notifications.  The disabled path costs
one hoisted check per round and nothing per message — the telemetry
overhead gate in ``benchmarks/bench_simulator_throughput.py`` enforces
this against the frozen pre-instrumentation scheduler.

Parallel composition on subgraphs
---------------------------------

The paper's recursive procedures run "in parallel on all subgraphs" of a
vertex partition.  :meth:`SynchronousNetwork.run` accepts a ``part_of``
labeling; when given, each node only *sees* (and can only message) neighbours
with the same label, i.e. the program executes on every induced subgraph
simultaneously within a single global round loop — so the measured round
count is the max over parts, exactly like real parallel execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from ..errors import SimulationError
from ..graphs.graph import Graph
from ..types import Vertex
from .engines import EngineRun, ProgramFactory, get_engine

# Importing the column module registers the "column" engine; nothing in
# this module calls into it directly.
from . import column as _column  # noqa: F401

#: Default cap on rounds; generous enough for every algorithm in the library
#: on any reasonable input while still catching non-terminating programs.
DEFAULT_ROUND_LIMIT_FACTOR = 50


@dataclass
class RunResult:
    """Outcome of one simulated run of a node program."""

    outputs: Dict[Vertex, Any]
    rounds: int
    messages: int
    message_bytes: int
    max_message_bytes: int = 0

    def merged_with(self, other: "RunResult") -> "RunResult":
        """Combine two runs executed sequentially (rounds add)."""
        outputs = dict(self.outputs)
        outputs.update(other.outputs)
        return RunResult(
            outputs=outputs,
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            message_bytes=self.message_bytes + other.message_bytes,
            max_message_bytes=max(self.max_message_bytes, other.max_message_bytes),
        )


class SynchronousNetwork:
    """A network of processors, one per vertex of an undirected graph.

    ``scheduler`` selects the default execution engine for every
    :meth:`run` on this network (overridable per run) by registry name:
    ``"event"`` (the fast path, default), ``"dense"`` (the reference
    engine), ``"column"`` (bulk-synchronous numpy kernels), or any engine
    registered via :func:`~repro.simulator.engines.register_engine`.
    """

    def __init__(self, graph: Graph, scheduler: str = "event"):
        get_engine(scheduler)  # unknown names raise, listing the registry
        self.graph = graph
        self.scheduler = scheduler

    # ------------------------------------------------------------------
    def run(
        self,
        program_factory: ProgramFactory,
        *,
        global_params: Optional[Mapping[str, Any]] = None,
        participants: Optional[Iterable[Vertex]] = None,
        part_of: Optional[Mapping[Vertex, Any]] = None,
        round_limit: Optional[int] = None,
        count_bytes: bool = False,
        trace: Optional["MessageTrace"] = None,
        telemetry: Optional["Telemetry"] = None,
        scheduler: Optional[str] = None,
    ) -> RunResult:
        """Execute one node program to completion on (a subgraph of) the net.

        Parameters
        ----------
        program_factory:
            Zero-argument callable returning a fresh :class:`NodeProgram`
            for each participating node.
        global_params:
            Globally-known parameters exposed to every node via
            ``ctx.globals`` (``n`` is added automatically).
        participants:
            Vertices that take part; defaults to all vertices.  Non-
            participants neither run programs nor receive messages, and are
            invisible to participants' contexts.
        part_of:
            Optional vertex labeling.  When given, a node only sees
            neighbours with the same label — the program runs on every
            induced part in parallel.
        round_limit:
            Maximum number of rounds before
            :class:`~repro.errors.RoundLimitExceeded` is raised.  Defaults to
            ``DEFAULT_ROUND_LIMIT_FACTOR * n + 1000``.  The event scheduler
            raises the same exception *eagerly* when every running node is
            asleep with no message in flight and no wakeup scheduled — a
            state the dense engine could only exit at the limit.
        count_bytes:
            When true, payload sizes are estimated (slower); otherwise only
            message counts are tracked.
        trace:
            Optional :class:`~repro.simulator.tracing.MessageTrace` that
            records every message (round, endpoints, payload, size).
        telemetry:
            Optional :class:`~repro.obs.telemetry.Telemetry` sink fed
            per-round counters (active nodes, messages, bytes,
            fast-forwarded rounds, wake/idle transitions) identically by
            both engines.  ``None`` (the default) keeps every hook out of
            the hot loop.  A sink with ``wants_bytes`` turns on payload
            sizing; one with ``wants_messages`` also receives every
            message via ``on_message``.
        scheduler:
            A registered engine name (``"event"``, ``"dense"``,
            ``"column"``, ...); defaults to the network's scheduler.  All
            engines produce byte-identical results (see module docstring).
        """
        mode = scheduler if scheduler is not None else self.scheduler
        engine = get_engine(mode)
        graph = self.graph
        if participants is None:
            order: Tuple[Vertex, ...] = graph.vertices
            active_set = None
        else:
            active_set = set(participants)
            for v in active_set:
                if not graph.has_vertex(v):
                    raise SimulationError(f"participant {v} is not a vertex")
            # The deterministic activation order: ascending vertex id.
            order = tuple(sorted(active_set))
        if round_limit is None:
            round_limit = DEFAULT_ROUND_LIMIT_FACTOR * max(1, graph.n) + 1000

        gp: Dict[str, Any] = dict(global_params or {})
        gp.setdefault("n", graph.n)

        # Telemetry byte sizing is decided once, engine-independently.
        if telemetry is not None and telemetry.wants_bytes:
            count_bytes = True

        state = EngineRun(
            graph,
            program_factory,
            order=order,
            active_set=active_set,
            part_of=part_of,
            gp=gp,
            round_limit=round_limit,
            count_bytes=count_bytes,
            trace=trace,
            telemetry=telemetry,
        )
        engine.execute(state)

        result = RunResult(
            outputs=state.outputs,
            rounds=state.rounds,
            messages=state.messages,
            message_bytes=state.message_bytes,
            max_message_bytes=state.max_message_bytes,
        )
        if telemetry is not None:
            telemetry.on_run_end(result)
        return result
