"""The synchronous message-passing network (the LOCAL model substrate).

:class:`SynchronousNetwork` executes node programs in discrete rounds, the
model of Peleg's book and of the paper: *"computations proceed in discrete
rounds; in each round each vertex is allowed to send a message to each of its
neighbors; all messages sent in a round arrive before the next round
starts"*.

Round accounting matches the paper's definition of running time: the number
of communication rounds that elapse until every participating node halts.  A
protocol in which every node decides locally and halts without communicating
costs 0 rounds.

Parallel composition on subgraphs
---------------------------------

The paper's recursive procedures run "in parallel on all subgraphs" of a
vertex partition.  :meth:`SynchronousNetwork.run` accepts a ``part_of``
labeling; when given, each node only *sees* (and can only message) neighbours
with the same label, i.e. the program executes on every induced subgraph
simultaneously within a single global round loop — so the measured round
count is the max over parts, exactly like real parallel execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import RoundLimitExceeded, SimulationError
from ..graphs.graph import Graph
from ..types import Vertex
from .context import NodeContext
from .message import payload_size
from .program import NodeProgram

#: Factory producing one fresh program instance per node.
ProgramFactory = Callable[[], NodeProgram]

#: Default cap on rounds; generous enough for every algorithm in the library
#: on any reasonable input while still catching non-terminating programs.
DEFAULT_ROUND_LIMIT_FACTOR = 50


@dataclass
class RunResult:
    """Outcome of one simulated run of a node program."""

    outputs: Dict[Vertex, Any]
    rounds: int
    messages: int
    message_bytes: int
    max_message_bytes: int = 0

    def merged_with(self, other: "RunResult") -> "RunResult":
        """Combine two runs executed sequentially (rounds add)."""
        outputs = dict(self.outputs)
        outputs.update(other.outputs)
        return RunResult(
            outputs=outputs,
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            message_bytes=self.message_bytes + other.message_bytes,
            max_message_bytes=max(self.max_message_bytes, other.max_message_bytes),
        )


class SynchronousNetwork:
    """A network of processors, one per vertex of an undirected graph."""

    def __init__(self, graph: Graph):
        self.graph = graph

    # ------------------------------------------------------------------
    def run(
        self,
        program_factory: ProgramFactory,
        *,
        global_params: Optional[Mapping[str, Any]] = None,
        participants: Optional[Iterable[Vertex]] = None,
        part_of: Optional[Mapping[Vertex, Any]] = None,
        round_limit: Optional[int] = None,
        count_bytes: bool = False,
        trace: Optional["MessageTrace"] = None,
    ) -> RunResult:
        """Execute one node program to completion on (a subgraph of) the net.

        Parameters
        ----------
        program_factory:
            Zero-argument callable returning a fresh :class:`NodeProgram`
            for each participating node.
        global_params:
            Globally-known parameters exposed to every node via
            ``ctx.globals`` (``n`` is added automatically).
        participants:
            Vertices that take part; defaults to all vertices.  Non-
            participants neither run programs nor receive messages, and are
            invisible to participants' contexts.
        part_of:
            Optional vertex labeling.  When given, a node only sees
            neighbours with the same label — the program runs on every
            induced part in parallel.
        round_limit:
            Maximum number of rounds before
            :class:`~repro.errors.RoundLimitExceeded` is raised.  Defaults to
            ``DEFAULT_ROUND_LIMIT_FACTOR * n + 1000``.
        count_bytes:
            When true, payload sizes are estimated (slower); otherwise only
            message counts are tracked.
        trace:
            Optional :class:`~repro.simulator.tracing.MessageTrace` that
            records every message (round, endpoints, payload, size).
        """
        graph = self.graph
        if participants is None:
            active_set = set(graph.vertices)
        else:
            active_set = set(participants)
            for v in active_set:
                if not graph.has_vertex(v):
                    raise SimulationError(f"participant {v} is not a vertex")
        if round_limit is None:
            round_limit = DEFAULT_ROUND_LIMIT_FACTOR * max(1, graph.n) + 1000

        gp: Dict[str, Any] = dict(global_params or {})
        gp.setdefault("n", graph.n)

        # Build contexts with visibility filtered to participants (and to the
        # same part when a labeling is given).
        contexts: Dict[Vertex, NodeContext] = {}
        programs: Dict[Vertex, NodeProgram] = {}
        for v in sorted(active_set):
            if part_of is not None:
                label = part_of.get(v)
                visible = tuple(
                    u
                    for u in graph.neighbors(v)
                    if u in active_set and part_of.get(u) == label
                )
            else:
                visible = tuple(u for u in graph.neighbors(v) if u in active_set)
            contexts[v] = NodeContext(v, visible, gp)
            programs[v] = program_factory()

        running = set(active_set)
        messages = 0
        message_bytes = 0
        max_message_bytes = 0
        # pending[dest] = {sender: payload} for the next round
        pending: Dict[Vertex, Dict[Vertex, Any]] = {}

        current_round = 0

        def dispatch(sender: Vertex, ctx: NodeContext) -> None:
            nonlocal messages, message_bytes, max_message_bytes
            for dest, payload in ctx.drain_outbox():
                messages += 1
                if count_bytes:
                    size = payload_size(payload)
                    message_bytes += size
                    if size > max_message_bytes:
                        max_message_bytes = size
                if trace is not None:
                    trace.record(current_round, sender, dest, payload)
                pending.setdefault(dest, {})[sender] = payload

        # Round 0: on_start for everyone, no inbound messages yet.
        for v in sorted(active_set):
            ctx = contexts[v]
            programs[v].on_start(ctx)
            dispatch(v, ctx)
            if ctx.halted:
                running.discard(v)

        rounds = 0
        while running:
            if rounds >= round_limit:
                raise RoundLimitExceeded(round_limit, len(running))
            rounds += 1
            current_round = rounds
            delivery = pending
            pending = {}
            # Activate nodes in id order for determinism; order cannot matter
            # semantically because all sends land in the *next* round.
            for v in sorted(running):
                ctx = contexts[v]
                ctx.inbox = delivery.get(v, {})
                ctx.round_number = rounds
                programs[v].on_round(ctx)
                dispatch(v, ctx)
            for v in list(running):
                if contexts[v].halted:
                    running.discard(v)
            # Messages addressed to halted nodes are dropped silently.

        outputs = {v: contexts[v].output for v in active_set}
        return RunResult(
            outputs=outputs,
            rounds=rounds,
            messages=messages,
            message_bytes=message_bytes,
            max_message_bytes=max_message_bytes,
        )
