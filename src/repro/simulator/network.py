"""The synchronous message-passing network (the LOCAL model substrate).

:class:`SynchronousNetwork` executes node programs in discrete rounds, the
model of Peleg's book and of the paper: *"computations proceed in discrete
rounds; in each round each vertex is allowed to send a message to each of its
neighbors; all messages sent in a round arrive before the next round
starts"*.

Round accounting matches the paper's definition of running time: the number
of communication rounds that elapse until every participating node halts.  A
protocol in which every node decides locally and halts without communicating
costs 0 rounds.

Schedulers
----------

Two execution engines produce byte-identical :class:`RunResult`\\ s:

* ``"dense"`` — the reference implementation: every still-running node is
  activated in every round, in ascending vertex order.  This is the model
  definition made literal, and it is what validates the fast path.
* ``"event"`` (default) — the active-set, event-driven fast path: the
  deterministic activation order is precomputed once, and a node that has
  declared quiescence (:meth:`~repro.simulator.context.NodeContext.
  idle_until_message`, optionally bounded by
  :meth:`~repro.simulator.context.NodeContext.wake_at`) is only activated
  in rounds where it has pending inbox messages or a due self-wakeup.
  Rounds in which *no* node is activatable are fast-forwarded in O(1),
  so sparse-activity executions (ruling-set stalls, color-class sweeps,
  recursive decompositions waiting on a deep part) cost proportional to
  the activity, not to rounds × nodes.

The equivalence rests on the quiescence contract: an idle declaration
promises that activating the node with an empty inbox would be a no-op.
Programs that never declare idleness behave identically under both
schedulers by construction (same activation sequence, same delivery).
Round, message, and byte accounting are shared, so the observable
``RunResult`` — outputs, rounds, messages, bytes — is identical; the
parametrised equivalence suite (``tests/test_scheduler_equivalence.py``)
enforces this across the whole algorithm library.

Parallel composition on subgraphs
---------------------------------

The paper's recursive procedures run "in parallel on all subgraphs" of a
vertex partition.  :meth:`SynchronousNetwork.run` accepts a ``part_of``
labeling; when given, each node only *sees* (and can only message) neighbours
with the same label, i.e. the program executes on every induced subgraph
simultaneously within a single global round loop — so the measured round
count is the max over parts, exactly like real parallel execution.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import RoundLimitExceeded, SimulationError
from ..graphs.graph import Graph
from ..types import Vertex
from .context import NodeContext
from .message import payload_size
from .program import NodeProgram

#: Factory producing one fresh program instance per node.
ProgramFactory = Callable[[], NodeProgram]

#: Default cap on rounds; generous enough for every algorithm in the library
#: on any reasonable input while still catching non-terminating programs.
DEFAULT_ROUND_LIMIT_FACTOR = 50

#: Valid values for the ``scheduler`` argument.
SCHEDULERS = ("event", "dense")


@dataclass
class RunResult:
    """Outcome of one simulated run of a node program."""

    outputs: Dict[Vertex, Any]
    rounds: int
    messages: int
    message_bytes: int
    max_message_bytes: int = 0

    def merged_with(self, other: "RunResult") -> "RunResult":
        """Combine two runs executed sequentially (rounds add)."""
        outputs = dict(self.outputs)
        outputs.update(other.outputs)
        return RunResult(
            outputs=outputs,
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            message_bytes=self.message_bytes + other.message_bytes,
            max_message_bytes=max(self.max_message_bytes, other.max_message_bytes),
        )


class SynchronousNetwork:
    """A network of processors, one per vertex of an undirected graph.

    ``scheduler`` selects the default execution engine for every
    :meth:`run` on this network (overridable per run): ``"event"`` (the
    fast path, default) or ``"dense"`` (the reference engine).
    """

    def __init__(self, graph: Graph, scheduler: str = "event"):
        if scheduler not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
            )
        self.graph = graph
        self.scheduler = scheduler

    # ------------------------------------------------------------------
    def run(
        self,
        program_factory: ProgramFactory,
        *,
        global_params: Optional[Mapping[str, Any]] = None,
        participants: Optional[Iterable[Vertex]] = None,
        part_of: Optional[Mapping[Vertex, Any]] = None,
        round_limit: Optional[int] = None,
        count_bytes: bool = False,
        trace: Optional["MessageTrace"] = None,
        scheduler: Optional[str] = None,
    ) -> RunResult:
        """Execute one node program to completion on (a subgraph of) the net.

        Parameters
        ----------
        program_factory:
            Zero-argument callable returning a fresh :class:`NodeProgram`
            for each participating node.
        global_params:
            Globally-known parameters exposed to every node via
            ``ctx.globals`` (``n`` is added automatically).
        participants:
            Vertices that take part; defaults to all vertices.  Non-
            participants neither run programs nor receive messages, and are
            invisible to participants' contexts.
        part_of:
            Optional vertex labeling.  When given, a node only sees
            neighbours with the same label — the program runs on every
            induced part in parallel.
        round_limit:
            Maximum number of rounds before
            :class:`~repro.errors.RoundLimitExceeded` is raised.  Defaults to
            ``DEFAULT_ROUND_LIMIT_FACTOR * n + 1000``.  The event scheduler
            raises the same exception *eagerly* when every running node is
            asleep with no message in flight and no wakeup scheduled — a
            state the dense engine could only exit at the limit.
        count_bytes:
            When true, payload sizes are estimated (slower); otherwise only
            message counts are tracked.
        trace:
            Optional :class:`~repro.simulator.tracing.MessageTrace` that
            records every message (round, endpoints, payload, size).
        scheduler:
            ``"event"`` or ``"dense"``; defaults to the network's scheduler.
            Both produce byte-identical results (see module docstring).
        """
        mode = scheduler if scheduler is not None else self.scheduler
        if mode not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {mode!r}; expected one of {SCHEDULERS}"
            )
        graph = self.graph
        if participants is None:
            active_set = set(graph.vertices)
        else:
            active_set = set(participants)
            for v in active_set:
                if not graph.has_vertex(v):
                    raise SimulationError(f"participant {v} is not a vertex")
        if round_limit is None:
            round_limit = DEFAULT_ROUND_LIMIT_FACTOR * max(1, graph.n) + 1000

        gp: Dict[str, Any] = dict(global_params or {})
        gp.setdefault("n", graph.n)

        # The deterministic activation order, computed exactly once: nodes
        # are always activated in ascending vertex order within a round.
        order: Tuple[Vertex, ...] = tuple(sorted(active_set))

        # Build contexts with visibility filtered to participants (and to the
        # same part when a labeling is given).
        contexts: Dict[Vertex, NodeContext] = {}
        programs: Dict[Vertex, NodeProgram] = {}
        for v in order:
            if part_of is not None:
                label = part_of.get(v)
                visible = tuple(
                    u
                    for u in graph.neighbors(v)
                    if u in active_set and part_of.get(u) == label
                )
            else:
                visible = tuple(u for u in graph.neighbors(v) if u in active_set)
            contexts[v] = NodeContext(v, visible, gp)
            programs[v] = program_factory()

        running = set(active_set)
        messages = 0
        message_bytes = 0
        max_message_bytes = 0
        # pending[dest] = {sender: payload} for the next round
        pending: Dict[Vertex, Dict[Vertex, Any]] = {}

        current_round = 0

        def dispatch(sender: Vertex, ctx: NodeContext) -> None:
            nonlocal messages, message_bytes, max_message_bytes
            for dest, payload in ctx.drain_outbox():
                messages += 1
                if count_bytes:
                    size = payload_size(payload)
                    message_bytes += size
                    if size > max_message_bytes:
                        max_message_bytes = size
                if trace is not None:
                    trace.record(current_round, sender, dest, payload)
                pending.setdefault(dest, {})[sender] = payload

        # Event-scheduler state.  ``awake`` holds the running nodes that have
        # NOT declared idleness (they are activated every round); ``wake_round``
        # is the authoritative wakeup book, ``wake_heap`` its lazy min-heap
        # (stale entries are skipped on pop).
        awake = set(active_set)
        wake_round: Dict[Vertex, int] = {}
        wake_heap: List[Tuple[int, int]] = []  # (round, order-rank)
        rank = {v: i for i, v in enumerate(order)}

        def note_schedule(v: Vertex, ctx: NodeContext) -> None:
            """Record one activation's quiescence declaration (event mode)."""
            idle, wake = ctx.consume_schedule()
            if ctx.halted:
                return
            if idle:
                awake.discard(v)
            else:
                awake.add(v)
            if wake is not None:
                wake_round[v] = wake
                heapq.heappush(wake_heap, (wake, rank[v]))

        # Round 0: on_start for everyone, no inbound messages yet.
        for v in order:
            ctx = contexts[v]
            programs[v].on_start(ctx)
            dispatch(v, ctx)
            if mode == "event":
                note_schedule(v, ctx)
            else:
                ctx.consume_schedule()
            if ctx.halted:
                running.discard(v)
                awake.discard(v)

        rounds = 0
        if mode == "dense":
            while running:
                if rounds >= round_limit:
                    raise RoundLimitExceeded(round_limit, len(running))
                rounds += 1
                current_round = rounds
                delivery = pending
                pending = {}
                for v in order:
                    if v not in running:
                        continue
                    ctx = contexts[v]
                    ctx.inbox = delivery.get(v, {})
                    ctx.round_number = rounds
                    programs[v].on_round(ctx)
                    dispatch(v, ctx)
                    ctx.consume_schedule()
                for v in list(running):
                    if contexts[v].halted:
                        running.discard(v)
                # Messages addressed to halted nodes are dropped silently.
        else:
            while running:
                # Pick the next round in which anything can happen.  With a
                # non-idle node or a message in flight that is the very next
                # round; otherwise fast-forward to the earliest wakeup.
                if awake or pending:
                    next_round = rounds + 1
                else:
                    next_round = None
                    while wake_heap:
                        r, i = wake_heap[0]
                        v = order[i]
                        if v in running and wake_round.get(v) == r:
                            next_round = max(r, rounds + 1)
                            break
                        heapq.heappop(wake_heap)  # stale entry
                    if next_round is None:
                        # Every running node sleeps forever: the dense engine
                        # could only exit this state at the round limit, so
                        # fail the same way — just without the wait.
                        raise RoundLimitExceeded(round_limit, len(running))
                if next_round > round_limit:
                    raise RoundLimitExceeded(round_limit, len(running))
                rounds = next_round
                current_round = rounds
                delivery = pending
                pending = {}
                # Activatable this round: every awake node, every node with
                # mail, and every node whose wakeup is due.
                cand = set(awake)
                for v in delivery:
                    if v in running:
                        cand.add(v)
                while wake_heap and wake_heap[0][0] <= rounds:
                    r, i = heapq.heappop(wake_heap)
                    v = order[i]
                    if v in running and wake_round.get(v) == r:
                        cand.add(v)
                # Deterministic ascending-id activation without re-sorting
                # the whole running set: sort the candidates when they are
                # few, walk the precomputed order when most nodes are active.
                if len(cand) * 4 < len(order):
                    schedule = sorted(cand)
                else:
                    schedule = (v for v in order if v in cand)
                for v in schedule:
                    ctx = contexts[v]
                    wake_round.pop(v, None)  # any activation clears the wakeup
                    ctx.inbox = delivery.get(v, {})
                    ctx.round_number = rounds
                    programs[v].on_round(ctx)
                    dispatch(v, ctx)
                    note_schedule(v, ctx)
                for v in cand:
                    if contexts[v].halted:
                        running.discard(v)
                        awake.discard(v)
                        wake_round.pop(v, None)
                # Messages addressed to halted nodes are dropped silently.

        outputs = {v: contexts[v].output for v in active_set}
        return RunResult(
            outputs=outputs,
            rounds=rounds,
            messages=messages,
            message_bytes=message_bytes,
            max_message_bytes=max_message_bytes,
        )
