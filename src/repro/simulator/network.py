"""The synchronous message-passing network (the LOCAL model substrate).

:class:`SynchronousNetwork` executes node programs in discrete rounds, the
model of Peleg's book and of the paper: *"computations proceed in discrete
rounds; in each round each vertex is allowed to send a message to each of its
neighbors; all messages sent in a round arrive before the next round
starts"*.

Round accounting matches the paper's definition of running time: the number
of communication rounds that elapse until every participating node halts.  A
protocol in which every node decides locally and halts without communicating
costs 0 rounds.

Schedulers
----------

Two execution engines produce byte-identical :class:`RunResult`\\ s:

* ``"dense"`` — the reference implementation: every still-running node is
  activated in every round, in ascending vertex order.  This is the model
  definition made literal, and it is what validates the fast path.
* ``"event"`` (default) — the active-set, event-driven fast path: the
  deterministic activation order is precomputed once, and a node that has
  declared quiescence (:meth:`~repro.simulator.context.NodeContext.
  idle_until_message`, optionally bounded by
  :meth:`~repro.simulator.context.NodeContext.wake_at`) is only activated
  in rounds where it has pending inbox messages or a due self-wakeup.
  Rounds in which *no* node is activatable are fast-forwarded in O(1),
  so sparse-activity executions (ruling-set stalls, color-class sweeps,
  recursive decompositions waiting on a deep part) cost proportional to
  the activity, not to rounds × nodes.

The equivalence rests on the quiescence contract: an idle declaration
promises that activating the node with an empty inbox would be a no-op.
Programs that never declare idleness behave identically under both
schedulers by construction (same activation sequence, same delivery).
Round, message, and byte accounting are shared, so the observable
``RunResult`` — outputs, rounds, messages, bytes — is identical; the
parametrised equivalence suite (``tests/test_scheduler_equivalence.py``)
enforces this across the whole algorithm library.

Both engines also feed the same optional observation channel: a
:class:`~repro.obs.telemetry.Telemetry` sink passed via ``telemetry=``
receives per-round counters (active nodes, messages, bytes, wake/idle
transitions) and fast-forward notifications.  The disabled path costs
one hoisted check per round and nothing per message — the telemetry
overhead gate in ``benchmarks/bench_simulator_throughput.py`` enforces
this against the frozen pre-instrumentation scheduler.

Parallel composition on subgraphs
---------------------------------

The paper's recursive procedures run "in parallel on all subgraphs" of a
vertex partition.  :meth:`SynchronousNetwork.run` accepts a ``part_of``
labeling; when given, each node only *sees* (and can only message) neighbours
with the same label, i.e. the program executes on every induced subgraph
simultaneously within a single global round loop — so the measured round
count is the max over parts, exactly like real parallel execution.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import RoundLimitExceeded, SimulationError
from ..graphs.graph import Graph
from ..types import Vertex
from .context import NodeContext
from .message import payload_size
from .program import NodeProgram

#: Factory producing one fresh program instance per node.
ProgramFactory = Callable[[], NodeProgram]

#: Default cap on rounds; generous enough for every algorithm in the library
#: on any reasonable input while still catching non-terminating programs.
DEFAULT_ROUND_LIMIT_FACTOR = 50

#: Valid values for the ``scheduler`` argument.
SCHEDULERS = ("event", "dense")


@dataclass
class RunResult:
    """Outcome of one simulated run of a node program."""

    outputs: Dict[Vertex, Any]
    rounds: int
    messages: int
    message_bytes: int
    max_message_bytes: int = 0

    def merged_with(self, other: "RunResult") -> "RunResult":
        """Combine two runs executed sequentially (rounds add)."""
        outputs = dict(self.outputs)
        outputs.update(other.outputs)
        return RunResult(
            outputs=outputs,
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            message_bytes=self.message_bytes + other.message_bytes,
            max_message_bytes=max(self.max_message_bytes, other.max_message_bytes),
        )


class SynchronousNetwork:
    """A network of processors, one per vertex of an undirected graph.

    ``scheduler`` selects the default execution engine for every
    :meth:`run` on this network (overridable per run): ``"event"`` (the
    fast path, default) or ``"dense"`` (the reference engine).
    """

    def __init__(self, graph: Graph, scheduler: str = "event"):
        if scheduler not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
            )
        self.graph = graph
        self.scheduler = scheduler

    # ------------------------------------------------------------------
    def run(
        self,
        program_factory: ProgramFactory,
        *,
        global_params: Optional[Mapping[str, Any]] = None,
        participants: Optional[Iterable[Vertex]] = None,
        part_of: Optional[Mapping[Vertex, Any]] = None,
        round_limit: Optional[int] = None,
        count_bytes: bool = False,
        trace: Optional["MessageTrace"] = None,
        telemetry: Optional["Telemetry"] = None,
        scheduler: Optional[str] = None,
    ) -> RunResult:
        """Execute one node program to completion on (a subgraph of) the net.

        Parameters
        ----------
        program_factory:
            Zero-argument callable returning a fresh :class:`NodeProgram`
            for each participating node.
        global_params:
            Globally-known parameters exposed to every node via
            ``ctx.globals`` (``n`` is added automatically).
        participants:
            Vertices that take part; defaults to all vertices.  Non-
            participants neither run programs nor receive messages, and are
            invisible to participants' contexts.
        part_of:
            Optional vertex labeling.  When given, a node only sees
            neighbours with the same label — the program runs on every
            induced part in parallel.
        round_limit:
            Maximum number of rounds before
            :class:`~repro.errors.RoundLimitExceeded` is raised.  Defaults to
            ``DEFAULT_ROUND_LIMIT_FACTOR * n + 1000``.  The event scheduler
            raises the same exception *eagerly* when every running node is
            asleep with no message in flight and no wakeup scheduled — a
            state the dense engine could only exit at the limit.
        count_bytes:
            When true, payload sizes are estimated (slower); otherwise only
            message counts are tracked.
        trace:
            Optional :class:`~repro.simulator.tracing.MessageTrace` that
            records every message (round, endpoints, payload, size).
        telemetry:
            Optional :class:`~repro.obs.telemetry.Telemetry` sink fed
            per-round counters (active nodes, messages, bytes,
            fast-forwarded rounds, wake/idle transitions) identically by
            both engines.  ``None`` (the default) keeps every hook out of
            the hot loop.  A sink with ``wants_bytes`` turns on payload
            sizing; one with ``wants_messages`` also receives every
            message via ``on_message``.
        scheduler:
            ``"event"`` or ``"dense"``; defaults to the network's scheduler.
            Both produce byte-identical results (see module docstring).
        """
        mode = scheduler if scheduler is not None else self.scheduler
        if mode not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {mode!r}; expected one of {SCHEDULERS}"
            )
        graph = self.graph
        if participants is None:
            order: Tuple[Vertex, ...] = graph.vertices
            active_set = None
        else:
            active_set = set(participants)
            for v in active_set:
                if not graph.has_vertex(v):
                    raise SimulationError(f"participant {v} is not a vertex")
            # The deterministic activation order: ascending vertex id.
            order = tuple(sorted(active_set))
        if round_limit is None:
            round_limit = DEFAULT_ROUND_LIMIT_FACTOR * max(1, graph.n) + 1000

        gp: Dict[str, Any] = dict(global_params or {})
        gp.setdefault("n", graph.n)

        # Everything below runs in *slot* space: slot i is the i-th
        # participant in ascending-id order, and all per-node state lives in
        # flat lists indexed by slot — no id-keyed dict lookups in the inner
        # loops.  When the graph has contiguous ids and everyone
        # participates (the common case), slot == vertex id and the id→slot
        # map is skipped entirely.
        S = len(order)
        full = active_set is None or len(active_set) == graph.n
        identity = full and getattr(graph, "ids_contiguous", False)
        rank: Optional[Dict[Vertex, int]] = (
            None if identity else {v: i for i, v in enumerate(order)}
        )

        # Build contexts with visibility filtered to participants (and to
        # the same part when a labeling is given).  Unrestricted runs reuse
        # the graph's cached neighbour tuples — no per-run filtering pass.
        contexts: List[NodeContext] = []
        programs: List[NodeProgram] = []
        for v in order:
            if part_of is not None:
                label = part_of.get(v)
                visible = tuple(
                    u
                    for u in graph.neighbors(v)
                    if (active_set is None or u in active_set)
                    and part_of.get(u) == label
                )
                ctx = NodeContext(v, visible, gp)
            elif not full:
                visible = tuple(
                    u for u in graph.neighbors(v) if u in active_set
                )
                ctx = NodeContext(v, visible, gp)
            else:
                ctx = NodeContext(v, graph.neighbors(v), gp)
            contexts.append(ctx)
            programs.append(program_factory())

        running = bytearray(b"\x01") * S
        running_count = S
        messages = 0
        message_bytes = 0
        max_message_bytes = 0
        # The batched per-round delivery buffer: pending[slot] is the inbox
        # dict {sender_id: payload} being assembled for the next round.
        pending: Dict[int, Dict[Vertex, Any]] = {}

        current_round = 0
        # Telemetry is hoisted out of the hot loop: one ``is not None``
        # check per round, nothing per message unless the sink asks for
        # the message stream (wants_messages) or byte sizing (wants_bytes).
        tel = telemetry
        if tel is not None and tel.wants_bytes:
            count_bytes = True
        msg_hook = tel is not None and tel.wants_messages
        # Byte counting and tracing are rare; keeping them in a slow-path
        # helper keeps the per-message fast path branch-free.
        slow_path = count_bytes or trace is not None or msg_hook

        def dispatch_slow(sender: Vertex, outbox) -> None:
            nonlocal messages, message_bytes, max_message_bytes
            for dest, payload in outbox:
                messages += 1
                if count_bytes:
                    size = payload_size(payload)
                    message_bytes += size
                    if size > max_message_bytes:
                        max_message_bytes = size
                if trace is not None:
                    trace.record(current_round, sender, dest, payload)
                if msg_hook:
                    tel.on_message(current_round, sender, dest, payload)
                slot = dest if rank is None else rank[dest]
                box = pending.get(slot)
                if box is None:
                    box = pending[slot] = {}
                box[sender] = payload

        # Event-scheduler state.  ``awake`` holds the running slots that have
        # NOT declared idleness (they are activated every round); ``wake_round``
        # is the authoritative wakeup book, ``wake_heap`` its lazy min-heap
        # (stale entries are skipped on pop).
        awake = set(range(S))
        wake_round: Dict[int, int] = {}
        wake_heap: List[Tuple[int, int]] = []  # (round, slot)
        heappush = heapq.heappush

        if tel is not None:
            tel.on_run_start(S, mode)

        # Round 0: on_start for everyone, no inbound messages yet.
        for slot in range(S):
            ctx = contexts[slot]
            programs[slot].on_start(ctx)
            outbox = ctx._outbox
            if outbox:
                ctx._outbox = []
                if slow_path:
                    dispatch_slow(ctx.node, outbox)
                else:
                    messages += len(outbox)
                    sender = ctx.node
                    for dest, payload in outbox:
                        dslot = dest if rank is None else rank[dest]
                        box = pending.get(dslot)
                        if box is None:
                            box = pending[dslot] = {}
                        box[sender] = payload
            if mode == "event":
                idle = ctx._idle_requested
                wake = ctx._wake_round
                if idle:
                    ctx._idle_requested = False
                if wake is not None:
                    ctx._wake_round = None
                if not ctx.halted:
                    if idle:
                        awake.discard(slot)
                    else:
                        awake.add(slot)
                    if wake is not None:
                        wake_round[slot] = wake
                        heappush(wake_heap, (wake, slot))
            else:
                ctx._idle_requested = False
                ctx._wake_round = None
            if ctx.halted:
                running[slot] = 0
                running_count -= 1
                awake.discard(slot)

        if tel is not None:
            # Round 0 activates every participant; nodes that parked in
            # on_start count as idle transitions (event engine only —
            # dense never parks a node).
            idled0 = running_count - len(awake) if mode == "event" else 0
            tel.on_round(0, S, messages, message_bytes, 0, idled0)

        rounds = 0
        if mode == "dense":
            while running_count:
                if rounds >= round_limit:
                    raise RoundLimitExceeded(round_limit, running_count)
                rounds += 1
                current_round = rounds
                if tel is not None:
                    tel_m0 = messages
                    tel_b0 = message_bytes
                    tel_active = running_count
                delivery = pending
                pending = {}
                for slot in range(S):
                    if not running[slot]:
                        continue
                    ctx = contexts[slot]
                    ctx.inbox = delivery.get(slot, {})
                    ctx.round_number = rounds
                    programs[slot].on_round(ctx)
                    outbox = ctx._outbox
                    if outbox:
                        ctx._outbox = []
                        if slow_path:
                            dispatch_slow(ctx.node, outbox)
                        else:
                            messages += len(outbox)
                            sender = ctx.node
                            for dest, payload in outbox:
                                dslot = dest if rank is None else rank[dest]
                                box = pending.get(dslot)
                                if box is None:
                                    box = pending[dslot] = {}
                                box[sender] = payload
                    ctx._idle_requested = False
                    ctx._wake_round = None
                for slot in range(S):
                    if running[slot] and contexts[slot].halted:
                        running[slot] = 0
                        running_count -= 1
                if tel is not None:
                    tel.on_round(
                        rounds,
                        tel_active,
                        messages - tel_m0,
                        message_bytes - tel_b0,
                        0,
                        0,
                    )
                # Messages addressed to halted nodes are dropped silently.
        else:
            while running_count:
                # Pick the next round in which anything can happen.  With a
                # non-idle node or a message in flight that is the very next
                # round; otherwise fast-forward to the earliest wakeup.
                if awake or pending:
                    next_round = rounds + 1
                else:
                    next_round = None
                    while wake_heap:
                        r, slot = wake_heap[0]
                        if running[slot] and wake_round.get(slot) == r:
                            next_round = max(r, rounds + 1)
                            break
                        heapq.heappop(wake_heap)  # stale entry
                    if next_round is None:
                        # Every running node sleeps forever: the dense engine
                        # could only exit this state at the round limit, so
                        # fail the same way — just without the wait.
                        raise RoundLimitExceeded(round_limit, running_count)
                if next_round > round_limit:
                    raise RoundLimitExceeded(round_limit, running_count)
                if tel is not None and next_round > rounds + 1:
                    tel.on_fast_forward(rounds, next_round)
                rounds = next_round
                current_round = rounds
                delivery = pending
                pending = {}
                # Activatable this round: every awake node, every node with
                # mail, and every node whose wakeup is due.
                cand = set(awake)
                for slot in delivery:
                    if running[slot]:
                        cand.add(slot)
                while wake_heap and wake_heap[0][0] <= rounds:
                    r, slot = heapq.heappop(wake_heap)
                    if running[slot] and wake_round.get(slot) == r:
                        cand.add(slot)
                if tel is not None:
                    tel_m0 = messages
                    tel_b0 = message_bytes
                    # Wake transitions: candidates activated from a parked
                    # state (must be counted before the schedule loop
                    # mutates ``awake``).
                    tel_woke = sum(1 for s in cand if s not in awake)
                # Deterministic ascending-id activation (slot order is id
                # order) without re-sorting the whole running set: sort the
                # candidates when they are few, walk the slot range when
                # most nodes are active.
                if len(cand) * 4 < S:
                    schedule = sorted(cand)
                else:
                    schedule = (s for s in range(S) if s in cand)
                for slot in schedule:
                    ctx = contexts[slot]
                    wake_round.pop(slot, None)  # activation clears the wakeup
                    ctx.inbox = delivery.get(slot, {})
                    ctx.round_number = rounds
                    programs[slot].on_round(ctx)
                    outbox = ctx._outbox
                    if outbox:
                        ctx._outbox = []
                        if slow_path:
                            dispatch_slow(ctx.node, outbox)
                        else:
                            messages += len(outbox)
                            sender = ctx.node
                            for dest, payload in outbox:
                                dslot = dest if rank is None else rank[dest]
                                box = pending.get(dslot)
                                if box is None:
                                    box = pending[dslot] = {}
                                box[sender] = payload
                    # inline note_schedule: this is the hottest line pair in
                    # the event engine
                    idle = ctx._idle_requested
                    wake = ctx._wake_round
                    if idle:
                        ctx._idle_requested = False
                    if wake is not None:
                        ctx._wake_round = None
                    if not ctx.halted:
                        if idle:
                            awake.discard(slot)
                        else:
                            awake.add(slot)
                        if wake is not None:
                            wake_round[slot] = wake
                            heappush(wake_heap, (wake, slot))
                for slot in cand:
                    if contexts[slot].halted:
                        if running[slot]:
                            running[slot] = 0
                            running_count -= 1
                        awake.discard(slot)
                        wake_round.pop(slot, None)
                if tel is not None:
                    # Idle transitions: activated nodes that are still
                    # running but parked themselves this round.
                    tel_idled = sum(
                        1 for s in cand if running[s] and s not in awake
                    )
                    tel.on_round(
                        rounds,
                        len(cand),
                        messages - tel_m0,
                        message_bytes - tel_b0,
                        tel_woke,
                        tel_idled,
                    )
                # Messages addressed to halted nodes are dropped silently.

        outputs = {ctx.node: ctx.output for ctx in contexts}
        result = RunResult(
            outputs=outputs,
            rounds=rounds,
            messages=messages,
            message_bytes=message_bytes,
            max_message_bytes=max_message_bytes,
        )
        if tel is not None:
            tel.on_run_end(result)
        return result
