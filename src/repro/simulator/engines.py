"""The execution-engine registry and the two per-node program engines.

:class:`~repro.simulator.network.SynchronousNetwork.run` no longer special-
cases scheduler names: every engine is an :class:`Engine` registered under a
name via :func:`register_engine`, and ``run`` dispatches to
``get_engine(name)``.  Unknown names raise
:class:`~repro.errors.SimulationError` listing whatever is registered *at
that moment*, so third-party engines (registered the same way as the
built-ins) appear in the error message automatically.

Built-in engines:

* ``"dense"`` (:class:`DenseEngine`) — the reference implementation: every
  still-running node is activated in every round, in ascending vertex
  order.  The model definition made literal.
* ``"event"`` (:class:`EventEngine`) — the active-set fast path: nodes that
  declared quiescence are only activated on message delivery or a due
  wakeup, and rounds with no activatable node are fast-forwarded in O(1).
* ``"column"`` (:class:`~repro.simulator.column.ColumnEngine`, registered
  by :mod:`repro.simulator.column`) — bulk-synchronous numpy execution for
  programs that provide a vectorized kernel
  (:meth:`~repro.simulator.program.NodeProgram.column_kernel`); every
  other program transparently falls back to the event engine.

All engines must produce byte-identical :class:`RunResult`\\ s; the
parametrised suite ``tests/test_scheduler_equivalence.py`` pins every
registered engine against the dense reference automatically.

The engine contract
-------------------

An engine receives an :class:`EngineRun` — the precomputed, engine-agnostic
run state (participant order, slot ranks, globals, limits, telemetry) — and
must fill in its result fields (``outputs``, ``rounds``, ``messages``,
``message_bytes``, ``max_message_bytes``).  The engine is responsible for
calling ``telemetry.on_run_start`` (with the name of the engine that
*actually executes*, so fallbacks are observable) and for per-round
telemetry; ``on_run_end`` is emitted by ``SynchronousNetwork.run`` once the
``RunResult`` exists.
"""

from __future__ import annotations

import heapq
import os
import warnings
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import RoundLimitExceeded, SimulationError
from ..types import Vertex
from .context import NodeContext
from .message import payload_size
from .program import NodeProgram

#: Factory producing one fresh program instance per node.
ProgramFactory = Callable[[], NodeProgram]


class Engine:
    """Protocol/base class for execution engines.

    Subclasses implement :meth:`execute`, which consumes an
    :class:`EngineRun` and fills in its result fields.  Register concrete
    engines with :func:`register_engine` to make them selectable by name.
    """

    #: Registry name, set by :func:`register_engine`.
    name: str = ""

    def execute(self, run: "EngineRun") -> None:
        raise NotImplementedError


#: The engine registry: name -> engine instance.
ENGINES: Dict[str, Engine] = {}

#: Names shipped by the package itself; shadowing one outside a test run
#: changes the semantics of every sweep spec that says "dense"/"event"/
#: "column", so it warns.
_BUILTIN_ENGINE_NAMES = frozenset({"dense", "event", "column"})


def register_engine(name: str) -> Callable[[type], type]:
    """Class decorator registering an :class:`Engine` subclass under ``name``.

    The class is instantiated once and stored in :data:`ENGINES`; the name
    becomes valid everywhere a ``scheduler`` is accepted
    (``SynchronousNetwork``, sweep specs, the CLI).  Registering an existing
    name replaces the previous engine (latest wins), which is how a test or
    an experiment can shadow a built-in — but shadowing a built-in outside
    a pytest run emits a :class:`RuntimeWarning`, because every cached
    TrialSpec naming that scheduler silently changes meaning.
    """

    def deco(cls: type) -> type:
        if (
            name in _BUILTIN_ENGINE_NAMES
            and name in ENGINES
            and "PYTEST_CURRENT_TEST" not in os.environ
        ):
            warnings.warn(
                f"register_engine({name!r}) shadows the built-in "
                f"{name!r} engine ({type(ENGINES[name]).__name__}); cached "
                "results keyed on this scheduler name no longer describe "
                "the code that produced them",
                RuntimeWarning,
                stacklevel=2,
            )
        cls.name = name
        ENGINES[name] = cls()
        return cls

    return deco


def engine_names() -> Tuple[str, ...]:
    """The currently registered engine names, sorted."""
    return tuple(sorted(ENGINES))


def get_engine(name: str) -> Engine:
    """Look up a registered engine; unknown names list what exists."""
    try:
        return ENGINES[name]
    except KeyError:
        raise SimulationError(
            f"unknown scheduler {name!r}; registered engines: "
            f"{engine_names()}"
        ) from None


class EngineRun:
    """Engine-agnostic state for one ``SynchronousNetwork.run`` invocation.

    Built once by ``run`` and handed to the selected engine.  Everything a
    loop needs is precomputed here (participant order, slot ranks, the
    effective byte-counting flag); per-node contexts and program instances
    are *not* — engines that need them call :meth:`build_contexts`, so the
    column engine's kernel path never materialises n Python objects.
    """

    __slots__ = (
        "graph",
        "program_factory",
        "order",
        "active_set",
        "part_of",
        "S",
        "full",
        "rank",
        "gp",
        "round_limit",
        "count_bytes",
        "trace",
        "telemetry",
        "outputs",
        "rounds",
        "messages",
        "message_bytes",
        "max_message_bytes",
    )

    def __init__(
        self,
        graph,
        program_factory: ProgramFactory,
        *,
        order: Tuple[Vertex, ...],
        active_set: Optional[set],
        part_of: Optional[Mapping[Vertex, Any]],
        gp: Dict[str, Any],
        round_limit: int,
        count_bytes: bool,
        trace,
        telemetry,
    ):
        self.graph = graph
        self.program_factory = program_factory
        self.order = order
        self.active_set = active_set
        self.part_of = part_of
        self.gp = gp
        self.round_limit = round_limit
        self.count_bytes = count_bytes
        self.trace = trace
        self.telemetry = telemetry
        # Everything below runs in *slot* space: slot i is the i-th
        # participant in ascending-id order, and all per-node state lives
        # in flat lists indexed by slot — no id-keyed dict lookups in the
        # inner loops.  When the graph has contiguous ids and everyone
        # participates (the common case), slot == vertex id and the
        # id→slot map is skipped entirely.
        self.S = len(order)
        self.full = active_set is None or len(active_set) == graph.n
        identity = self.full and getattr(graph, "ids_contiguous", False)
        self.rank: Optional[Dict[Vertex, int]] = (
            None if identity else {v: i for i, v in enumerate(order)}
        )
        # Result fields, filled by the engine.
        self.outputs: Dict[Vertex, Any] = {}
        self.rounds = 0
        self.messages = 0
        self.message_bytes = 0
        self.max_message_bytes = 0

    def build_contexts(self) -> Tuple[List[NodeContext], List[NodeProgram]]:
        """Materialise one context + program instance per participant.

        Visibility is filtered to participants (and to the same part when a
        labeling is given).  Unrestricted runs reuse the graph's cached
        neighbour tuples — no per-run filtering pass.
        """
        graph = self.graph
        active_set = self.active_set
        part_of = self.part_of
        gp = self.gp
        full = self.full
        program_factory = self.program_factory
        contexts: List[NodeContext] = []
        programs: List[NodeProgram] = []
        for v in self.order:
            if part_of is not None:
                label = part_of.get(v)
                visible = tuple(
                    u
                    for u in graph.neighbors(v)
                    if (active_set is None or u in active_set)
                    and part_of.get(u) == label
                )
                ctx = NodeContext(v, visible, gp)
            elif not full:
                visible = tuple(
                    u for u in graph.neighbors(v) if u in active_set
                )
                ctx = NodeContext(v, visible, gp)
            else:
                ctx = NodeContext(v, graph.neighbors(v), gp)
            contexts.append(ctx)
            programs.append(program_factory())
        return contexts, programs


# ----------------------------------------------------------------------
# The two per-node-program engines (dense reference + event fast path)
# ----------------------------------------------------------------------
def _execute_programs(run: EngineRun, event: bool) -> None:
    """The shared per-node-program loop: dense when ``event`` is false.

    This is the original ``SynchronousNetwork.run`` body; the two engines
    differ only in scheduling (who is activated when), never in delivery or
    accounting, which is what keeps their results byte-identical.
    """
    S = run.S
    rank = run.rank
    round_limit = run.round_limit
    trace = run.trace
    count_bytes = run.count_bytes
    contexts, programs = run.build_contexts()

    running = bytearray(b"\x01") * S
    running_count = S
    messages = 0
    message_bytes = 0
    max_message_bytes = 0
    # The batched per-round delivery buffer: pending[slot] is the inbox
    # dict {sender_id: payload} being assembled for the next round.
    pending: Dict[int, Dict[Vertex, Any]] = {}

    current_round = 0
    # Telemetry is hoisted out of the hot loop: one ``is not None`` check
    # per round, nothing per message unless the sink asks for the message
    # stream (wants_messages) or byte sizing (wants_bytes).
    tel = run.telemetry
    msg_hook = tel is not None and tel.wants_messages
    # Byte counting and tracing are rare; keeping them in a slow-path
    # helper keeps the per-message fast path branch-free.
    slow_path = count_bytes or trace is not None or msg_hook

    def dispatch_slow(sender: Vertex, outbox) -> None:
        nonlocal messages, message_bytes, max_message_bytes
        for dest, payload in outbox:
            messages += 1
            if count_bytes:
                size = payload_size(payload)
                message_bytes += size
                if size > max_message_bytes:
                    max_message_bytes = size
            if trace is not None:
                trace.record(current_round, sender, dest, payload)
            if msg_hook:
                tel.on_message(current_round, sender, dest, payload)
            slot = dest if rank is None else rank[dest]
            box = pending.get(slot)
            if box is None:
                box = pending[slot] = {}
            box[sender] = payload

    # Event-scheduler state.  ``awake`` holds the running slots that have
    # NOT declared idleness (they are activated every round); ``wake_round``
    # is the authoritative wakeup book, ``wake_heap`` its lazy min-heap
    # (stale entries are skipped on pop).
    awake = set(range(S))
    wake_round: Dict[int, int] = {}
    wake_heap: List[Tuple[int, int]] = []  # (round, slot)
    heappush = heapq.heappush

    if tel is not None:
        tel.on_run_start(S, "event" if event else "dense")

    # Round 0: on_start for everyone, no inbound messages yet.
    for slot in range(S):
        ctx = contexts[slot]
        programs[slot].on_start(ctx)
        outbox = ctx._outbox
        if outbox:
            ctx._outbox = []
            if slow_path:
                dispatch_slow(ctx.node, outbox)
            else:
                messages += len(outbox)
                sender = ctx.node
                for dest, payload in outbox:
                    dslot = dest if rank is None else rank[dest]
                    box = pending.get(dslot)
                    if box is None:
                        box = pending[dslot] = {}
                    box[sender] = payload
        if event:
            idle = ctx._idle_requested
            wake = ctx._wake_round
            if idle:
                ctx._idle_requested = False
            if wake is not None:
                ctx._wake_round = None
            if not ctx.halted:
                if idle:
                    awake.discard(slot)
                else:
                    awake.add(slot)
                if wake is not None:
                    wake_round[slot] = wake
                    heappush(wake_heap, (wake, slot))
        else:
            ctx._idle_requested = False
            ctx._wake_round = None
        if ctx.halted:
            running[slot] = 0
            running_count -= 1
            awake.discard(slot)

    if tel is not None:
        # Round 0 activates every participant; nodes that parked in
        # on_start count as idle transitions (event engine only — dense
        # never parks a node).
        idled0 = running_count - len(awake) if event else 0
        tel.on_round(0, S, messages, message_bytes, 0, idled0)

    rounds = 0
    if not event:
        while running_count:
            if rounds >= round_limit:
                raise RoundLimitExceeded(round_limit, running_count)
            rounds += 1
            current_round = rounds
            if tel is not None:
                tel_m0 = messages
                tel_b0 = message_bytes
                tel_active = running_count
            delivery = pending
            pending = {}
            for slot in range(S):
                if not running[slot]:
                    continue
                ctx = contexts[slot]
                ctx.inbox = delivery.get(slot, {})
                ctx.round_number = rounds
                programs[slot].on_round(ctx)
                outbox = ctx._outbox
                if outbox:
                    ctx._outbox = []
                    if slow_path:
                        dispatch_slow(ctx.node, outbox)
                    else:
                        messages += len(outbox)
                        sender = ctx.node
                        for dest, payload in outbox:
                            dslot = dest if rank is None else rank[dest]
                            box = pending.get(dslot)
                            if box is None:
                                box = pending[dslot] = {}
                            box[sender] = payload
                ctx._idle_requested = False
                ctx._wake_round = None
            for slot in range(S):
                if running[slot] and contexts[slot].halted:
                    running[slot] = 0
                    running_count -= 1
            if tel is not None:
                tel.on_round(
                    rounds,
                    tel_active,
                    messages - tel_m0,
                    message_bytes - tel_b0,
                    0,
                    0,
                )
            # Messages addressed to halted nodes are dropped silently.
    else:
        while running_count:
            # Pick the next round in which anything can happen.  With a
            # non-idle node or a message in flight that is the very next
            # round; otherwise fast-forward to the earliest wakeup.
            if awake or pending:
                next_round = rounds + 1
            else:
                next_round = None
                while wake_heap:
                    r, slot = wake_heap[0]
                    if running[slot] and wake_round.get(slot) == r:
                        next_round = max(r, rounds + 1)
                        break
                    heapq.heappop(wake_heap)  # stale entry
                if next_round is None:
                    # Every running node sleeps forever: the dense engine
                    # could only exit this state at the round limit, so
                    # fail the same way — just without the wait.
                    raise RoundLimitExceeded(round_limit, running_count)
            if next_round > round_limit:
                raise RoundLimitExceeded(round_limit, running_count)
            if tel is not None and next_round > rounds + 1:
                tel.on_fast_forward(rounds, next_round)
            rounds = next_round
            current_round = rounds
            delivery = pending
            pending = {}
            # Activatable this round: every awake node, every node with
            # mail, and every node whose wakeup is due.
            cand = set(awake)
            for slot in delivery:
                if running[slot]:
                    cand.add(slot)
            while wake_heap and wake_heap[0][0] <= rounds:
                r, slot = heapq.heappop(wake_heap)
                if running[slot] and wake_round.get(slot) == r:
                    cand.add(slot)
            if tel is not None:
                tel_m0 = messages
                tel_b0 = message_bytes
                # Wake transitions: candidates activated from a parked
                # state (must be counted before the schedule loop mutates
                # ``awake``).
                tel_woke = sum(1 for s in cand if s not in awake)
            # Deterministic ascending-id activation (slot order is id
            # order) without re-sorting the whole running set: sort the
            # candidates when they are few, walk the slot range when most
            # nodes are active.
            if len(cand) * 4 < S:
                schedule = sorted(cand)
            else:
                schedule = (s for s in range(S) if s in cand)
            for slot in schedule:
                ctx = contexts[slot]
                wake_round.pop(slot, None)  # activation clears the wakeup
                ctx.inbox = delivery.get(slot, {})
                ctx.round_number = rounds
                programs[slot].on_round(ctx)
                outbox = ctx._outbox
                if outbox:
                    ctx._outbox = []
                    if slow_path:
                        dispatch_slow(ctx.node, outbox)
                    else:
                        messages += len(outbox)
                        sender = ctx.node
                        for dest, payload in outbox:
                            dslot = dest if rank is None else rank[dest]
                            box = pending.get(dslot)
                            if box is None:
                                box = pending[dslot] = {}
                            box[sender] = payload
                # inline note_schedule: this is the hottest line pair in
                # the event engine
                idle = ctx._idle_requested
                wake = ctx._wake_round
                if idle:
                    ctx._idle_requested = False
                if wake is not None:
                    ctx._wake_round = None
                if not ctx.halted:
                    if idle:
                        awake.discard(slot)
                    else:
                        awake.add(slot)
                    if wake is not None:
                        wake_round[slot] = wake
                        heappush(wake_heap, (wake, slot))
            for slot in cand:
                if contexts[slot].halted:
                    if running[slot]:
                        running[slot] = 0
                        running_count -= 1
                    awake.discard(slot)
                    wake_round.pop(slot, None)
            if tel is not None:
                # Idle transitions: activated nodes that are still running
                # but parked themselves this round.
                tel_idled = sum(
                    1 for s in cand if running[s] and s not in awake
                )
                tel.on_round(
                    rounds,
                    len(cand),
                    messages - tel_m0,
                    message_bytes - tel_b0,
                    tel_woke,
                    tel_idled,
                )
            # Messages addressed to halted nodes are dropped silently.

    run.outputs = {ctx.node: ctx.output for ctx in contexts}
    run.rounds = rounds
    run.messages = messages
    run.message_bytes = message_bytes
    run.max_message_bytes = max_message_bytes


@register_engine("dense")
class DenseEngine(Engine):
    """The reference engine: every running node activated every round."""

    def execute(self, run: EngineRun) -> None:
        _execute_programs(run, event=False)


@register_engine("event")
class EventEngine(Engine):
    """The active-set fast path driven by quiescence declarations."""

    def execute(self, run: EngineRun) -> None:
        _execute_programs(run, event=True)


__all__ = [
    "Engine",
    "EngineRun",
    "ENGINES",
    "register_engine",
    "engine_names",
    "get_engine",
    "DenseEngine",
    "EventEngine",
    "ProgramFactory",
]
