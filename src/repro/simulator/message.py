"""Message envelopes and size accounting for the round simulator.

The LOCAL model places no bound on message size, but one of the things a
reproduction should surface is *how much* information the paper's algorithms
actually move around — most of them are frugal (a color, an H-index, a small
tuple).  The simulator therefore wraps every payload in an
:class:`Envelope` recording sender and destination, and estimates payload
size in bytes with :func:`payload_size`.

Payloads must be treated as immutable by receivers: the simulator passes the
object by reference (copying every message would dominate the runtime of
large simulations), so a program that mutated a received payload would
corrupt its neighbour's state.  All built-in programs send ints and tuples,
which are immutable anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..types import Vertex


@dataclass(frozen=True)
class Envelope:
    """A single point-to-point message in one synchronous round."""

    sender: Vertex
    dest: Vertex
    payload: Any


def payload_size(payload: Any) -> int:
    """Estimate the size of a payload in bytes.

    This is a proxy (the repr length for opaque objects, proper bit-length
    for ints), good enough to compare the communication volume of different
    algorithms; it is not a wire format.

    Integers are sized by magnitude plus one sign bit when negative (so
    ``-255`` needs 9 bits = 2 bytes while ``255`` fits in 1).  Sets and
    frozensets are sized element-wise like tuples — never via ``repr``,
    whose length depends on hash iteration order and would make byte
    accounting nondeterministic.
    """
    if payload is None:
        return 0
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        bits = payload.bit_length() + (1 if payload < 0 else 0)
        return max(1, (bits + 7) // 8)
    if isinstance(payload, (tuple, list)):
        return sum(payload_size(item) for item in payload) + 1
    if isinstance(payload, (set, frozenset)):
        return sum(payload_size(item) for item in payload) + 1
    if isinstance(payload, dict):
        return (
            sum(payload_size(k) + payload_size(v) for k, v in payload.items()) + 1
        )
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    return len(repr(payload))
