"""Per-node execution context for node programs.

A :class:`NodeContext` is the *only* interface a node program has to the
world, and it enforces the information constraints of the LOCAL model:

* the node knows its own id, its (visible) neighbours' ids, and whatever
  globally-announced parameters the run was started with (``n``, the
  arboricity bound, ε, ...) — exactly what the paper assumes;
* it can send one message per neighbour per round and read the messages that
  arrived at the *start* of the current round;
* it cannot inspect any other node's state.

Neighbour visibility is how the library realises the paper's "recurse in
parallel on all subgraphs": when an algorithm runs restricted to a vertex
part, each node's context only exposes the neighbours inside the same part,
so the program is literally executing on the induced subgraph.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import SimulationError
from ..types import Vertex


class NodeContext:
    """The world as seen by one node during one run of a node program."""

    __slots__ = (
        "node",
        "neighbors",
        "globals",
        "inbox",
        "_outbox",
        "_halted",
        "output",
        "_neighbor_set",
        "round_number",
    )

    def __init__(
        self,
        node: Vertex,
        neighbors: Tuple[Vertex, ...],
        global_params: Mapping[str, Any],
    ):
        self.node = node
        self.neighbors = neighbors
        self._neighbor_set = frozenset(neighbors)
        self.globals = global_params
        #: messages received at the start of the current round: sender -> payload
        self.inbox: Dict[Vertex, Any] = {}
        self._outbox: List[Tuple[Vertex, Any]] = []
        self._halted = False
        self.output: Any = None
        self.round_number = 0

    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        """The node's degree in the (visible) graph."""
        return len(self.neighbors)

    @property
    def halted(self) -> bool:
        """True once the node has called :meth:`halt`."""
        return self._halted

    # ------------------------------------------------------------------
    def send(self, to: Vertex, payload: Any) -> None:
        """Queue a message to the neighbour ``to`` for delivery next round.

        Sending to a non-neighbour is a protocol violation and raises
        :class:`~repro.errors.SimulationError` — there is no routing in the
        LOCAL model.
        """
        if to not in self._neighbor_set:
            raise SimulationError(
                f"node {self.node} tried to send to non-neighbour {to}"
            )
        self._outbox.append((to, payload))

    def broadcast(self, payload: Any) -> None:
        """Queue the same message to every visible neighbour."""
        for u in self.neighbors:
            self._outbox.append((u, payload))

    def halt(self, output: Any = None) -> None:
        """Stop participating; record ``output`` as the node's result.

        Messages queued in the same activation are still delivered (a node
        may announce its final decision and halt in the same round).  After
        halting the node is never activated again and incoming messages are
        dropped.
        """
        self._halted = True
        self.output = output

    # ------------------------------------------------------------------
    def drain_outbox(self) -> List[Tuple[Vertex, Any]]:
        """Internal: hand queued messages to the simulator and clear them."""
        out = self._outbox
        self._outbox = []
        return out
