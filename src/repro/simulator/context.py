"""Per-node execution context for node programs.

A :class:`NodeContext` is the *only* interface a node program has to the
world, and it enforces the information constraints of the LOCAL model:

* the node knows its own id, its (visible) neighbours' ids, and whatever
  globally-announced parameters the run was started with (``n``, the
  arboricity bound, ε, ...) — exactly what the paper assumes;
* it can send one message per neighbour per round and read the messages that
  arrived at the *start* of the current round;
* it cannot inspect any other node's state.

Quiescence declarations
-----------------------

A program that has nothing to do until something external happens can tell
the scheduler so: :meth:`NodeContext.idle_until_message` promises that —
until a message arrives — activating the node would be a no-op (no sends,
no halt, no observable state change).  :meth:`NodeContext.wake_at` /
:meth:`NodeContext.wake_in` additionally schedule a self-wakeup at a known
future round (e.g. "my color class is processed at round c").  The
event-driven scheduler uses these declarations to skip pointless
activations; the dense reference scheduler ignores them and activates every
running node each round, which is how the equivalence suite validates that
a declaration really was a no-op promise.

Declarations are *per-activation*: they cover the gap until the node's next
activation only, and every activation (message delivery, wakeup, or a dense-
mode round) clears them — a program that wants to stay quiescent re-declares
before returning.

Neighbour visibility is how the library realises the paper's "recurse in
parallel on all subgraphs": when an algorithm runs restricted to a vertex
part, each node's context only exposes the neighbours inside the same part,
so the program is literally executing on the induced subgraph.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import SimulationError
from ..types import Vertex


class NodeContext:
    """The world as seen by one node during one run of a node program."""

    __slots__ = (
        "node",
        "neighbors",
        "globals",
        "inbox",
        "_outbox",
        "_halted",
        "output",
        "_neighbor_set",
        "round_number",
        "_idle_requested",
        "_wake_round",
    )

    def __init__(
        self,
        node: Vertex,
        neighbors: Tuple[Vertex, ...],
        global_params: Mapping[str, Any],
    ):
        self.node = node
        self.neighbors = neighbors
        # Built lazily on the first send(): only send-validation needs the
        # set, and broadcast-only programs never pay for it.
        self._neighbor_set: Optional[frozenset] = None
        self.globals = global_params
        #: messages received at the start of the current round: sender -> payload
        self.inbox: Dict[Vertex, Any] = {}
        self._outbox: List[Tuple[Vertex, Any]] = []
        self._halted = False
        self.output: Any = None
        self.round_number = 0
        self._idle_requested = False
        self._wake_round: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        """The node's degree in the (visible) graph."""
        return len(self.neighbors)

    @property
    def halted(self) -> bool:
        """True once the node has called :meth:`halt`."""
        return self._halted

    # ------------------------------------------------------------------
    def send(self, to: Vertex, payload: Any) -> None:
        """Queue a message to the neighbour ``to`` for delivery next round.

        Sending to a non-neighbour is a protocol violation and raises
        :class:`~repro.errors.SimulationError` — there is no routing in the
        LOCAL model.
        """
        ns = self._neighbor_set
        if ns is None:
            ns = self._neighbor_set = frozenset(self.neighbors)
        if to not in ns:
            raise SimulationError(
                f"node {self.node} tried to send to non-neighbour {to}"
            )
        self._outbox.append((to, payload))

    def broadcast(self, payload: Any) -> None:
        """Queue the same message to every visible neighbour."""
        self._outbox.extend([(u, payload) for u in self.neighbors])

    def halt(self, output: Any = None) -> None:
        """Stop participating; record ``output`` as the node's result.

        Messages queued in the same activation are still delivered (a node
        may announce its final decision and halt in the same round).  After
        halting the node is never activated again and incoming messages are
        dropped.
        """
        self._halted = True
        self.output = output

    # ------------------------------------------------------------------
    def idle_until_message(self) -> None:
        """Declare quiescence until the next inbound message (or wakeup).

        This is a *promise*: were the node activated anyway with an empty
        inbox before then, ``on_round`` would send nothing, not halt, and
        change no observable state.  The event scheduler skips such
        activations; the dense scheduler performs them, so a program that
        breaks the promise diverges between the modes and fails the
        equivalence suite.  The declaration lasts until the node's next
        activation — re-declare to keep sleeping.
        """
        self._idle_requested = True

    def wake_at(self, round_number: int) -> None:
        """Request a self-wakeup at the absolute round ``round_number``.

        Combined with :meth:`idle_until_message` this bounds the sleep: the
        node is activated by whichever comes first, a message or the wakeup
        round.  A wakeup in the past (or at the current round) means "next
        round".  Without an idle declaration the node is activated every
        round anyway and the wakeup is moot.  Cleared by every activation.
        """
        r = int(round_number)
        nxt = self.round_number + 1
        self._wake_round = r if r > nxt else nxt

    def wake_in(self, rounds: int) -> None:
        """Request a self-wakeup ``rounds`` rounds from the current one."""
        self.wake_at(self.round_number + max(1, int(rounds)))

    # ------------------------------------------------------------------
    def drain_outbox(self) -> List[Tuple[Vertex, Any]]:
        """Internal: hand queued messages to the simulator and clear them."""
        out = self._outbox
        self._outbox = []
        return out

    def consume_schedule(self) -> Tuple[bool, Optional[int]]:
        """Internal: read and clear this activation's quiescence declaration.

        Returns ``(idle_requested, wake_round)``; the scheduler calls this
        exactly once after each activation (both modes clear the flags so a
        declaration never outlives one activation).
        """
        idle, wake = self._idle_requested, self._wake_round
        self._idle_requested = False
        self._wake_round = None
        return idle, wake
