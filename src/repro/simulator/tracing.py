"""Message tracing for debugging and communication analysis.

A :class:`MessageTrace` passed to :meth:`SynchronousNetwork.run` records
every message with its round number, endpoints, and size.  Used by the
CONGEST-style analyses (how big do messages actually get?) and handy when
debugging a new node program.

``MessageTrace`` is a :class:`~repro.obs.telemetry.Telemetry` sink with
``wants_messages`` set: the dedicated ``trace=`` argument of
:meth:`SynchronousNetwork.run` is kept as the convenient spelling, but a
trace may equally be passed as ``telemetry=`` (do not pass the same
object as both — every message would be recorded twice).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..obs.telemetry import Telemetry
from ..types import Vertex
from .message import payload_size


@dataclass(frozen=True)
class TracedMessage:
    """One recorded message."""

    round_number: int
    sender: Vertex
    dest: Vertex
    payload: Any
    size: int


@dataclass
class MessageTrace(Telemetry):
    """Collects every message of a run (opt-in; costs memory and time)."""

    wants_messages = True

    messages: List[TracedMessage] = field(default_factory=list)

    def record(
        self, round_number: int, sender: Vertex, dest: Vertex, payload: Any
    ) -> None:
        """Internal: called by the simulator for every dispatched message."""
        self.messages.append(
            TracedMessage(
                round_number=round_number,
                sender=sender,
                dest=dest,
                payload=payload,
                size=payload_size(payload),
            )
        )

    def on_message(
        self, round_number: int, sender: Vertex, dest: Vertex, payload: Any
    ) -> None:
        """Telemetry hook: identical to :meth:`record`."""
        self.record(round_number, sender, dest, payload)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.messages)

    @property
    def max_size(self) -> int:
        """Largest payload observed, in (estimated) bytes."""
        return max((m.size for m in self.messages), default=0)

    @property
    def total_bytes(self) -> int:
        """Sum of payload sizes."""
        return sum(m.size for m in self.messages)

    def per_round(self) -> Dict[int, int]:
        """Message count per round."""
        out: Dict[int, int] = {}
        for m in self.messages:
            out[m.round_number] = out.get(m.round_number, 0) + 1
        return out

    def between(self, u: Vertex, v: Vertex) -> List[TracedMessage]:
        """All messages exchanged between a pair of vertices (either way)."""
        return [
            m
            for m in self.messages
            if (m.sender, m.dest) in ((u, v), (v, u))
        ]

    def sizes_histogram(self, bucket: int = 4) -> Dict[int, int]:
        """Histogram of payload sizes, bucketed to multiples of ``bucket``."""
        out: Dict[int, int] = {}
        for m in self.messages:
            key = (m.size // bucket) * bucket
            out[key] = out.get(key, 0) + 1
        return out
