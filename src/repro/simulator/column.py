"""The column-mode bulk-synchronous engine.

The dense and event engines dispatch Python per node per round; for the
paper's structured core programs (H-partition peel, iterated recoloring,
forest labeling, the MIS color-class sweep) that per-node dispatch *is* the
cost — the per-round work is perfectly regular.  The column engine runs
whole rounds as numpy array operations over all nodes at once: per-node
state lives in flat int64/bool columns, and neighbourhood interactions are
CSR-segmented reductions over the graph's zero-copy ``csr()`` arrays.

Kernel contract
---------------

A program opts in by overriding
:meth:`~repro.simulator.program.NodeProgram.column_kernel`: called on one
*prototype* instance with a :class:`ColumnRun`, it returns either ``None``
("this configuration cannot be vectorized — use the event engine") or a
zero-argument callable that executes the entire run.  The callable must

* fill ``col.outputs`` (plain Python values — exactly what the per-node
  program would have passed to ``ctx.halt``) and ``col.rounds``;
* account every message the per-node program would have sent via
  :meth:`ColumnRun.note_round` — including broadcasts to already-halted
  neighbours, which the scalar engines count and drop;
* raise the same exceptions (:class:`~repro.errors.RoundLimitExceeded`,
  :class:`~repro.errors.SimulationError`) in the same situations.

Byte accounting uses the same :func:`~repro.simulator.message.payload_size`
estimator (see :meth:`ColumnRun.int_payload_sizes` for the vectorized int
path), so ``RunResult``\\ s are byte-identical to the dense reference; the
parametrised equivalence suite enforces this.

Fallback semantics
------------------

The kernel path is only taken when the whole run is expressible in column
form: numpy present, contiguous vertex ids, full participation, no
``part_of`` labeling, no per-message observers (``trace`` or a telemetry
sink with ``wants_messages``), and the program returns a kernel.  In every
other case the run is delegated, whole, to the event engine — same results,
just scalar execution.  Telemetry reports the engine that actually executed
(``on_run_start`` receives ``"column"`` only on the kernel path), which is
how tests observe fallback.

Telemetry parity: kernels feed the same per-round counters through
:meth:`ColumnRun.note_round` (messages and bytes per executed round match
the scalar engines; skipped rounds surface as ``on_fast_forward`` exactly
like the event engine).  Wake/idle transition counts and the ``active``
column are scheduler-specific diagnostics, as they already are between
dense and event.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

try:  # the engine registers itself regardless; kernels need numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

from .engines import Engine, EngineRun, get_engine, register_engine


class ColumnRun:
    """The vectorized view of one run, handed to column kernels.

    Exposes the graph as numpy CSR arrays plus the run parameters a kernel
    needs, and collects the kernel's results and accounting.  ``offsets``
    and ``neighbors`` are int64 views of the graph's CSR arrays (zero-copy);
    ``n`` is the participant count (== ``graph.n`` on the kernel path).
    """

    __slots__ = (
        "graph",
        "np",
        "n",
        "globals",
        "round_limit",
        "count_bytes",
        "offsets",
        "neighbors",
        "_degrees",
        "_telemetry",
        "_last_round",
        "outputs",
        "rounds",
        "messages",
        "message_bytes",
        "max_message_bytes",
    )

    def __init__(self, run: EngineRun):
        self.graph = run.graph
        self.np = _np
        self.n = run.S
        self.globals = run.gp
        self.round_limit = run.round_limit
        self.count_bytes = run.count_bytes
        off_mv, nbr_mv = run.graph.csr()
        self.offsets = _np.frombuffer(off_mv, dtype=_np.int64)
        self.neighbors = _np.frombuffer(nbr_mv, dtype=_np.int64)
        self._degrees = None
        self._telemetry = run.telemetry
        self._last_round = -1
        self.outputs: Dict[Any, Any] = {}
        self.rounds = 0
        self.messages = 0
        self.message_bytes = 0
        self.max_message_bytes = 0

    # -- graph helpers -------------------------------------------------
    @property
    def degrees(self) -> "_np.ndarray":
        """Per-node degree column (int64, cached)."""
        if self._degrees is None:
            self._degrees = _np.diff(self.offsets)
        return self._degrees

    def row_sources(self) -> "_np.ndarray":
        """CSR expansion: ``src[k]`` is the row owning ``neighbors[k]``."""
        return _np.repeat(
            _np.arange(self.n, dtype=_np.int64), self.degrees
        )

    def neighbor_slices(self, mask: "_np.ndarray") -> "_np.ndarray":
        """All neighbour entries of the masked rows, concatenated.

        Equivalent to ``np.concatenate([row(i) for i in mask])`` without
        the per-row Python loop: build one boolean selector over the flat
        neighbour array from the masked rows' CSR extents.
        """
        idx = _np.flatnonzero(mask)
        if not len(idx):
            return _np.empty(0, dtype=_np.int64)
        starts = self.offsets[idx]
        lens = self.offsets[idx + 1] - starts
        total = int(lens.sum())
        if total == 0:
            return _np.empty(0, dtype=_np.int64)
        # ranges [starts_i, starts_i + lens_i) concatenated: one arange,
        # rebased per group (exclusive cumsum gives each group's origin)
        pos = _np.arange(total, dtype=_np.int64)
        pos -= _np.repeat(_np.cumsum(lens) - lens, lens)
        return self.neighbors[_np.repeat(starts, lens) + pos]

    # -- byte accounting helpers --------------------------------------
    @staticmethod
    def int_payload_sizes(vals: "_np.ndarray") -> "_np.ndarray":
        """Vectorized :func:`payload_size` for non-negative int payloads.

        Matches ``max(1, (bit_length + 7) // 8)`` exactly: one byte per
        started octet, minimum one.
        """
        sizes = _np.ones(len(vals), dtype=_np.int64)
        v = vals >> 8
        while v.any():
            sizes += v > 0
            v >>= 8
        return sizes

    # -- accounting + telemetry ---------------------------------------
    def note_round(
        self,
        round_number: int,
        active: int,
        messages: int,
        message_bytes: int = 0,
        max_message_bytes: int = 0,
    ) -> None:
        """Record one executed round (accounting + telemetry).

        ``messages``/``message_bytes`` are the totals *sent in* this round;
        ``max_message_bytes`` the largest single payload among them.  Rounds
        a kernel skips entirely (nothing would activate) are simply not
        noted — the gap is reported as a fast-forward, mirroring the event
        engine.
        """
        messages = int(messages)
        message_bytes = int(message_bytes)
        self.messages += messages
        self.message_bytes += message_bytes
        if max_message_bytes > self.max_message_bytes:
            self.max_message_bytes = int(max_message_bytes)
        tel = self._telemetry
        if tel is not None:
            if round_number > self._last_round + 1:
                tel.on_fast_forward(self._last_round, round_number)
            tel.on_round(
                round_number, int(active), messages, message_bytes, 0, 0
            )
        self._last_round = round_number


#: A column kernel: zero-arg callable executing the whole run.
ColumnKernel = Callable[[], None]


@register_engine("column")
class ColumnEngine(Engine):
    """Bulk-synchronous numpy engine with event-engine fallback."""

    def execute(self, run: EngineRun) -> None:
        kernel: Optional[ColumnKernel] = None
        col: Optional[ColumnRun] = None
        tel = run.telemetry
        vectorizable = (
            _np is not None
            and run.rank is None  # contiguous ids + full participation
            and run.part_of is None
            and run.trace is None
            and not (tel is not None and tel.wants_messages)
        )
        if vectorizable:
            prototype = run.program_factory()
            col = ColumnRun(run)
            kernel = prototype.column_kernel(col)
        if kernel is None:
            get_engine("event").execute(run)
            return
        if tel is not None:
            tel.on_run_start(run.S, "column")
        kernel()
        run.outputs = col.outputs
        run.rounds = col.rounds
        run.messages = col.messages
        run.message_bytes = col.message_bytes
        run.max_message_bytes = col.max_message_bytes


__all__ = ["ColumnRun", "ColumnEngine", "ColumnKernel"]
