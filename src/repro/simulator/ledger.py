"""Round/message accounting across the phases of a composite algorithm.

The paper's algorithms are compositions: H-partition, then defective
coloring, then orientation, then arbdefective coloring, recursing...  Each
phase is one (or several parallel) simulator run(s); sequential phases add
rounds.  :class:`RoundLedger` records the per-phase costs so benchmarks can
report both the total and the breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .network import RunResult


@dataclass
class PhaseRecord:
    """Cost of one named phase of a composite algorithm."""

    name: str
    rounds: int
    messages: int = 0
    message_bytes: int = 0


@dataclass
class RoundLedger:
    """Accumulates the round/message cost of sequential phases."""

    phases: List[PhaseRecord] = field(default_factory=list)

    def add(self, name: str, rounds: int, messages: int = 0, message_bytes: int = 0) -> None:
        """Record a phase that consumed the given number of rounds."""
        self.phases.append(PhaseRecord(name, rounds, messages, message_bytes))

    def add_run(self, name: str, result: RunResult) -> None:
        """Record a simulator run as a phase."""
        self.add(name, result.rounds, result.messages, result.message_bytes)

    def add_ledger(self, other: "RoundLedger", prefix: str = "") -> None:
        """Absorb another ledger's phases (optionally name-prefixed)."""
        for p in other.phases:
            self.add(prefix + p.name, p.rounds, p.messages, p.message_bytes)

    @property
    def total_rounds(self) -> int:
        """Sum of rounds over all recorded phases."""
        return sum(p.rounds for p in self.phases)

    @property
    def total_messages(self) -> int:
        """Sum of message counts over all recorded phases."""
        return sum(p.messages for p in self.phases)

    def breakdown(self) -> Dict[str, int]:
        """Rounds per phase name (summed when a name repeats)."""
        out: Dict[str, int] = {}
        for p in self.phases:
            out[p.name] = out.get(p.name, 0) + p.rounds
        return out

    def __str__(self) -> str:
        lines = [f"total rounds: {self.total_rounds}"]
        for name, r in self.breakdown().items():
            lines.append(f"  {name}: {r}")
        return "\n".join(lines)
