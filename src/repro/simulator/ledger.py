"""Round/message accounting across the phases of a composite algorithm.

The paper's algorithms are compositions: H-partition, then defective
coloring, then orientation, then arbdefective coloring, recursing...  Each
phase is one (or several parallel) simulator run(s); sequential phases add
rounds.  :class:`RoundLedger` records the per-phase costs so benchmarks can
report both the total and the breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence

from .network import RunResult


@dataclass
class PhaseRecord:
    """Cost of one named phase of a composite algorithm."""

    name: str
    rounds: int
    messages: int = 0
    message_bytes: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-able dict (the sweep-record serialization)."""
        return {
            "name": self.name,
            "rounds": self.rounds,
            "messages": self.messages,
            "message_bytes": self.message_bytes,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "PhaseRecord":
        return cls(
            name=str(d["name"]),
            rounds=int(d["rounds"]),
            messages=int(d.get("messages", 0)),
            message_bytes=int(d.get("message_bytes", 0)),
        )


@dataclass
class RoundLedger:
    """Accumulates the round/message cost of sequential phases."""

    phases: List[PhaseRecord] = field(default_factory=list)

    def add(self, name: str, rounds: int, messages: int = 0, message_bytes: int = 0) -> None:
        """Record a phase that consumed the given number of rounds."""
        self.phases.append(PhaseRecord(name, rounds, messages, message_bytes))

    def add_run(self, name: str, result: RunResult) -> None:
        """Record a simulator run as a phase."""
        self.add(name, result.rounds, result.messages, result.message_bytes)

    def add_ledger(self, other: "RoundLedger", prefix: str = "") -> None:
        """Absorb another ledger's phases (optionally name-prefixed)."""
        for p in other.phases:
            self.add(prefix + p.name, p.rounds, p.messages, p.message_bytes)

    def add_telemetry(self, name: str, telemetry: Any) -> None:
        """Record a phase from a collected
        :class:`~repro.obs.telemetry.RoundTelemetry` sink."""
        self.add(
            name,
            telemetry.last_round,
            telemetry.total_messages,
            telemetry.total_bytes,
        )

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Serialize all phases (the ``phases`` block of sweep records)."""
        return [p.to_dict() for p in self.phases]

    @classmethod
    def from_dicts(cls, items: Sequence[Mapping[str, Any]]) -> "RoundLedger":
        return cls(phases=[PhaseRecord.from_dict(d) for d in items])

    @property
    def total_rounds(self) -> int:
        """Sum of rounds over all recorded phases."""
        return sum(p.rounds for p in self.phases)

    @property
    def total_messages(self) -> int:
        """Sum of message counts over all recorded phases."""
        return sum(p.messages for p in self.phases)

    def breakdown(self) -> Dict[str, int]:
        """Rounds per phase name (summed when a name repeats)."""
        out: Dict[str, int] = {}
        for p in self.phases:
            out[p.name] = out.get(p.name, 0) + p.rounds
        return out

    def __str__(self) -> str:
        lines = [f"total rounds: {self.total_rounds}"]
        for name, r in self.breakdown().items():
            lines.append(f"  {name}: {r}")
        return "\n".join(lines)
