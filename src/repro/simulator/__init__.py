"""The LOCAL-model synchronous round simulator.

This subpackage is the substrate every algorithm in :mod:`repro.core` runs
on: per-node programs (:class:`~repro.simulator.program.NodeProgram`)
executed in synchronous rounds on a
:class:`~repro.simulator.network.SynchronousNetwork`, with round and message
accounting via :class:`~repro.simulator.ledger.RoundLedger`.
"""

from .context import NodeContext
from .engines import Engine, engine_names, get_engine, register_engine
from .ledger import PhaseRecord, RoundLedger
from .message import Envelope, payload_size
from .network import RunResult, SynchronousNetwork
from .program import FunctionProgram, NodeProgram
from .tracing import MessageTrace, TracedMessage

__all__ = [
    "NodeContext",
    "NodeProgram",
    "FunctionProgram",
    "SynchronousNetwork",
    "RunResult",
    "RoundLedger",
    "PhaseRecord",
    "Envelope",
    "MessageTrace",
    "TracedMessage",
    "payload_size",
    "Engine",
    "register_engine",
    "engine_names",
    "get_engine",
]
