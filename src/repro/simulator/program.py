"""The node-program abstraction.

A distributed algorithm in this library is a *node program*: a class whose
instances run, one per vertex, on the synchronous network.  The simulator
activates every (still-running) instance once per round; instances
communicate only through the messages they queue on their
:class:`~repro.simulator.context.NodeContext`.

Lifecycle
---------

1. ``on_start(ctx)`` is called once, before any communication.  The node may
   send messages and may already halt (e.g. a source vertex that decides
   immediately).
2. For every subsequent round, ``on_round(ctx)`` is called with ``ctx.inbox``
   holding the messages delivered at the start of that round.
3. The run ends when every participating node has halted.  ``ctx.output`` is
   collected as the node's result.

State belongs on the program instance (``self``): each vertex has its own
instance, so instance attributes are exactly the node's local memory.

Quiescence (the event scheduler's contract)
-------------------------------------------

By default a running node is activated in every round.  A program that
spends rounds waiting — for a message, or for a known future round — may
declare that with ``ctx.idle_until_message()`` (optionally bounded by
``ctx.wake_at(r)`` / ``ctx.wake_in(k)``).  The declaration is a promise
that an activation with an empty inbox before the wakeup would be a no-op;
the event scheduler then skips those activations entirely, while the dense
reference scheduler still performs them (and thereby checks the promise:
a program that breaks it produces diverging results between the modes).
Declarations last until the node's next activation; re-declare each time.
Semantics — outputs, round counts, message counts — are identical under
both schedulers for any program honouring the contract.
"""

from __future__ import annotations


from .context import NodeContext


class NodeProgram:
    """Base class for per-node distributed programs.

    Subclasses override :meth:`on_start` and :meth:`on_round`.  The default
    implementations do nothing, which makes a node that never halts — always
    override at least enough to eventually call ``ctx.halt()``.
    """

    def on_start(self, ctx: NodeContext) -> None:
        """Round-0 activation, before any message has been exchanged."""

    def on_round(self, ctx: NodeContext) -> None:
        """Per-round activation; ``ctx.inbox`` holds this round's messages."""

    def column_kernel(self, col):
        """Optional vectorized whole-run kernel for the column engine.

        Called once on a *prototype* instance (never on per-node copies)
        with a :class:`~repro.simulator.column.ColumnRun`.  Return a
        zero-argument callable that executes the entire run in column form
        — filling ``col.outputs``/``col.rounds`` and accounting every round
        through ``col.note_round`` with results byte-identical to the
        scalar engines — or ``None`` (the default) to fall back to the
        event engine.  A program may also return ``None`` conditionally
        when only some configurations vectorize (e.g. a restricted
        conflict set).
        """
        return None


class FunctionProgram(NodeProgram):
    """Adapter turning a pair of callables into a :class:`NodeProgram`.

    Useful for tests and tiny protocols::

        prog = lambda: FunctionProgram(start=lambda ctx: ctx.halt(ctx.node))
    """

    def __init__(self, start=None, round=None):
        self._start = start
        self._round = round

    def on_start(self, ctx: NodeContext) -> None:
        if self._start is not None:
            self._start(ctx)

    def on_round(self, ctx: NodeContext) -> None:
        if self._round is not None:
            self._round(ctx)
